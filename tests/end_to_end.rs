//! Cross-crate integration tests: the full Opprentice pipeline from
//! synthetic KPI generation through detection, exercising every workspace
//! crate together.

use opprentice_repro::datagen::model::KpiSpec;
use opprentice_repro::datagen::{presets, SimulatedOperator};
use opprentice_repro::learn::metrics::pr_curve;
use opprentice_repro::learn::{auc_pr, Classifier, RandomForest, RandomForestParams};
use opprentice_repro::opprentice::cthld::{best_cthld, Preference};
use opprentice_repro::opprentice::evaluate::Evaluator;
use opprentice_repro::opprentice::strategy::{EvalPlan, TrainingStrategy};
use opprentice_repro::opprentice::{extract_features, Opprentice, OpprenticeConfig};

/// A small but realistic hourly KPI: 12 weeks, strong daily pattern.
///
/// The seed pins one concrete realization of the generator stream, so it is
/// coupled to the RNG implementation (see `third_party/rand`). If the RNG
/// ever changes, re-pick a seed whose realization clears the statistical
/// thresholds below — they encode "a typical KPI is learnable", not a
/// property of this particular seed.
fn small_kpi() -> KpiSpec {
    KpiSpec {
        name: "it".into(),
        interval: 3600,
        weeks: 12,
        base: 200.0,
        daily_amp: 0.4,
        weekly_amp: 0.1,
        noise_sigma: 0.04,
        burst_rate: 0.0,
        burst_sigma: 1.0,
        burst_scale: 0.0,
        anomaly_ratio: 0.06,
        anomaly_scale: 0.5,
        spike_bias: 0.0,
        anomaly_drift: 0.3,
        mean_anomaly_len: 5.0,
        extreme_label_quantile: None,
        missing_ratio: 0.003,
        seed: 0xE2E4,
    }
}

fn forest_params() -> RandomForestParams {
    RandomForestParams {
        n_trees: 20,
        seed: 9,
        ..Default::default()
    }
}

#[test]
fn generated_kpi_features_and_forest_reach_useful_accuracy() {
    let kpi = small_kpi().generate();
    let session = SimulatedOperator::default().label(&kpi);
    let matrix = extract_features(&kpi.series);
    assert_eq!(matrix.len(), kpi.series.len());
    assert_eq!(matrix.n_features(), 133);

    let ppw = kpi.series.points_per_week();
    let split = 8 * ppw;
    let (train, _) = matrix.dataset(&session.labels, 0..split);
    assert!(train.positives() > 20, "training set needs anomalies");

    let mut forest = RandomForest::new(forest_params());
    forest.fit(&train);
    let scores: Vec<Option<f64>> = (split..matrix.len())
        .map(|i| matrix.usable(i).then(|| forest.score(matrix.row(i))))
        .collect();
    let curve = pr_curve(&scores, &session.labels.flags()[split..]);
    let auc = auc_pr(&curve);
    assert!(auc > 0.55, "end-to-end AUCPR too low: {auc}");
}

#[test]
fn walk_forward_evaluator_improves_over_uninformative_baseline() {
    let kpi = small_kpi().generate();
    let session = SimulatedOperator::default().label(&kpi);
    let matrix = extract_features(&kpi.series);
    let mut ev = Evaluator::new(&matrix, &session.labels, kpi.series.points_per_week());
    ev.forest_params = forest_params();
    let outcomes = ev.run(TrainingStrategy::AllHistory, EvalPlan::weekly());
    assert_eq!(outcomes.len(), 4); // weeks 9..12
    let prevalence = session.labels.anomaly_ratio();
    // Weekly anomaly regimes drift, so a week can be (nearly) anomaly-free
    // — its PR curve is then empty and AUCPR zero by definition. Require
    // the informative weeks to beat an uninformative scorer soundly.
    let mut informative = 0usize;
    for o in &outcomes {
        let has_anomalies = session.labels.slice(o.points.clone()).anomaly_count() > 5;
        if has_anomalies {
            informative += 1;
            assert!(
                o.auc_pr > 3.0 * prevalence,
                "week {:?}: AUCPR {} vs prevalence {prevalence}",
                o.test_weeks,
                o.auc_pr
            );
        }
    }
    assert!(
        informative >= 2,
        "test data degenerate: {informative} informative weeks"
    );
}

#[test]
fn best_cthld_operating_point_honors_the_preference_when_reachable() {
    let kpi = small_kpi().generate();
    let session = SimulatedOperator::default().label(&kpi);
    let matrix = extract_features(&kpi.series);
    let mut ev = Evaluator::new(&matrix, &session.labels, kpi.series.points_per_week());
    ev.forest_params = forest_params();
    let outcomes = ev.run(TrainingStrategy::AllHistory, EvalPlan::weekly());

    let pref = Preference {
        recall: 0.4,
        precision: 0.4,
    }; // generous box
    let mut satisfied = 0usize;
    let mut evaluable = 0usize;
    for o in &outcomes {
        let Some(c) = best_cthld(&o.curve, &pref) else {
            continue; // anomaly-free week: no curve to pick from
        };
        evaluable += 1;
        assert!((0.0..=1.0).contains(&c));
        let point = o
            .curve
            .iter()
            .find(|p| p.threshold == c)
            .expect("threshold from the curve");
        if pref.satisfied_by(point.recall, point.precision) {
            satisfied += 1;
        }
    }
    assert!(
        evaluable >= 2,
        "test data degenerate: {evaluable} evaluable weeks"
    );
    assert!(
        satisfied * 2 >= evaluable,
        "only {satisfied}/{evaluable} weeks satisfied a generous box"
    );
}

#[test]
fn full_pipeline_object_detects_new_anomalies_after_retraining() {
    let kpi = small_kpi().generate();
    let session = SimulatedOperator::default().label(&kpi);
    let ppw = kpi.series.points_per_week();
    let cut = 9 * ppw;

    let mut opp = Opprentice::new(
        kpi.series.interval(),
        OpprenticeConfig {
            forest: forest_params(),
            ..Default::default()
        },
    );
    opp.ingest_history(&kpi.series.slice(0..cut), &session.labels.slice(0..cut))
        .expect("fresh pipeline accepts history");
    assert!(opp.retrain());

    // Stream the rest; collect verdicts and compare against the operator.
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for i in cut..kpi.series.len() {
        let verdict = opp.observe(kpi.series.timestamp_at(i), kpi.series.get(i));
        let truth = session.labels.is_anomaly(i);
        match (verdict.map(|d| d.is_anomaly).unwrap_or(false), truth) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            _ => {}
        }
    }
    assert!(tp > 0, "pipeline detected nothing");
    let recall = tp as f64 / (tp + fn_) as f64;
    let precision = tp as f64 / (tp + fp) as f64;
    assert!(recall > 0.3, "streamed recall {recall}");
    assert!(precision > 0.3, "streamed precision {precision}");
}

#[test]
fn operator_noise_degrades_but_does_not_break_learning() {
    // §4.2: "machine learning is well known for being robust to noises."
    let kpi = small_kpi().generate();
    let matrix = extract_features(&kpi.series);
    let ppw = kpi.series.points_per_week();
    let split = 8 * ppw;

    let auc_with = |labels: &opprentice_repro::timeseries::Labels| {
        let (train, _) = matrix.dataset(labels, 0..split);
        let mut forest = RandomForest::new(forest_params());
        forest.fit(&train);
        let scores: Vec<Option<f64>> = (split..matrix.len())
            .map(|i| matrix.usable(i).then(|| forest.score(matrix.row(i))))
            .collect();
        // Evaluate against the *clean* truth in both cases.
        auc_pr(&pr_curve(&scores, &kpi.truth.flags()[split..]))
    };

    let clean = auc_with(&kpi.truth);
    let noisy_labels = SimulatedOperator::default().label(&kpi).labels;
    let noisy = auc_with(&noisy_labels);
    assert!(clean > 0.5, "clean-label AUCPR {clean}");
    assert!(
        noisy > clean * 0.7,
        "noise destroyed learning: {noisy} vs {clean}"
    );
}

/// Train-while-serving over a real socket: a session keeps streaming
/// `OBSB` batches while a background `RETRAIN` runs. Every batch reply
/// must be byte-identical to one of two offline reference pipelines — A
/// (trained on the first 21 days of labels) or B (additionally retrained
/// on the week-4 labels) — because the swap is atomic and lands between
/// requests: a batch is answered wholly by the old model or wholly by the
/// new one, never a mixture. The switch must be monotone (once B, always
/// B), no reply may be an `ERR`, and after training completes the session
/// must serve exactly B.
#[test]
fn background_retrain_streams_against_old_then_new_reference() {
    use opprentice_repro::timeseries::Labels;
    use opprentice_server::testing::Client;
    use opprentice_server::{Server, ServerConfig};
    use std::fmt::Write as _;
    use std::time::{Duration, Instant};

    const INTERVAL: i64 = 3600;
    const N_TREES: usize = 16;

    // Hourly KPI with a daily pattern and a labeled spike every 63 h.
    let hours = 31 * 24;
    let mut values = Vec::with_capacity(hours);
    let mut flags = String::with_capacity(hours);
    let mut truth = Vec::with_capacity(hours);
    for i in 0..hours {
        let base = 100.0 + 20.0 * ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin();
        let anomalous = i % 63 == 50 || i % 63 == 51;
        values.push(if anomalous { base + 150.0 } else { base });
        flags.push(if anomalous { '1' } else { '0' });
        truth.push(anomalous);
    }
    let (h21, h28, h30) = (21 * 24, 28 * 24, 30 * 24);
    let obsb_line = |start_hour: usize| -> String {
        let rendered: Vec<String> = values[start_hour..start_hour + 24]
            .iter()
            .map(|v| format!("{v}"))
            .collect();
        format!(
            "OBSB {} {}",
            start_hour as i64 * INTERVAL,
            rendered.join(" ")
        )
    };

    // Offline references, mirroring the server session's configuration
    // (the HELLO handler: moderate preference, default forest params at
    // the server's tree count).
    let build_reference = |second_retrain: bool| -> Opprentice {
        let mut opp = Opprentice::new(
            INTERVAL as u32,
            OpprenticeConfig {
                preference: Preference::moderate(),
                forest: RandomForestParams {
                    n_trees: N_TREES,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        for (i, v) in values[..h21].iter().enumerate() {
            opp.observe(i as i64 * INTERVAL, Some(*v));
        }
        opp.ingest_labels(&Labels::from_flags(truth[..h21].to_vec()))
            .expect("labels fit");
        assert!(opp.retrain());
        for (i, v) in values[h21..h28].iter().enumerate() {
            opp.observe((h21 + i) as i64 * INTERVAL, Some(*v));
        }
        if second_retrain {
            opp.ingest_labels(&Labels::from_flags(truth[h21..h28].to_vec()))
                .expect("labels fit");
            assert!(opp.retrain());
        }
        opp
    };
    let mut ref_a = build_reference(false);
    let mut ref_b = build_reference(true);

    // Renders one day of observations exactly as an `OBSB` reply does.
    let render = |opp: &mut Opprentice, start_hour: usize| -> String {
        let mut out = String::from("OK ");
        for (k, i) in (start_hour..start_hour + 24).enumerate() {
            if k > 0 {
                out.push('|');
            }
            match opp.observe(i as i64 * INTERVAL, Some(values[i])) {
                Some(d) => write!(
                    out,
                    "p={:.4} cthld={:.3} anomaly={}",
                    d.probability,
                    d.cthld,
                    u8::from(d.is_anomaly)
                )
                .unwrap(),
                None => out.push_str("pending"),
            }
        }
        out
    };

    let server = Server::bind_with(
        "127.0.0.1:0",
        ServerConfig {
            n_trees: N_TREES,
            ..Default::default()
        },
    )
    .expect("bind");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.serve().expect("serve"));
    let mut c = Client::connect(handle.addr()).expect("connect");
    // A stalled request fails the test instead of hanging it.
    c.set_read_timeout(Some(Duration::from_secs(120))).unwrap();

    let wait_trained = |c: &mut Client| {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let status = c.send("STATUS").expect("status");
            if status.contains("training=0") {
                return;
            }
            assert!(Instant::now() < deadline, "retrain never landed: {status}");
            std::thread::sleep(Duration::from_millis(10));
        }
    };

    assert!(c.send("HELLO 3600").unwrap().starts_with("OK"));
    for day in 0..21 {
        let reply = c.send(&obsb_line(day * 24)).unwrap();
        assert!(reply.starts_with("OK"), "{reply}");
    }
    assert!(c
        .send(&format!("LABEL {}", &flags[..h21]))
        .unwrap()
        .starts_with("OK"));
    let reply = c.send("RETRAIN").unwrap();
    assert!(reply.starts_with("OK retraining job=1"), "{reply}");
    wait_trained(&mut c);

    for day in 21..28 {
        let reply = c.send(&obsb_line(day * 24)).unwrap();
        assert!(reply.starts_with("OK"), "{reply}");
    }
    assert!(c
        .send(&format!("LABEL {}", &flags[h21..h28]))
        .unwrap()
        .starts_with("OK"));

    // The second retrain runs in the background while days 28–29 stream.
    let reply = c.send("RETRAIN").unwrap();
    assert!(reply.starts_with("OK retraining job=2"), "{reply}");
    let mut switched = false;
    for day in 28..30 {
        let reply = c.send(&obsb_line(day * 24)).unwrap();
        assert!(reply.starts_with("OK"), "{reply}");
        let a = render(&mut ref_a, day * 24);
        let b = render(&mut ref_b, day * 24);
        if switched || reply != a {
            assert_eq!(reply, b, "day {day}: reply matches neither reference");
            switched = true;
        }
    }

    // Once training lands, the session serves exactly reference B.
    wait_trained(&mut c);
    let status = c.send("STATUS").unwrap();
    assert!(status.contains("model_version=2"), "{status}");
    let reply = c.send(&obsb_line(h30)).unwrap();
    let _ = render(&mut ref_a, h30);
    assert_eq!(reply, render(&mut ref_b, h30));
    assert!(
        c.events()
            .iter()
            .any(|e| e.starts_with("EVENT retrained job=2 model_version=2 ")),
        "completion event missing: {:?}",
        c.events()
    );

    c.send("QUIT").unwrap();
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn the_three_paper_kpis_generate_and_featurize_end_to_end() {
    // A fast-scale smoke test over the actual Table 1 presets.
    for spec in presets::all() {
        let mut spec = presets::fast(&spec, 600); // 10-minute for speed
        spec.weeks = 3;
        let kpi = spec.generate();
        let matrix = extract_features(&kpi.series);
        assert_eq!(matrix.len(), kpi.series.len());
        // Severities must be finite everywhere.
        for i in 0..matrix.len() {
            for &v in matrix.row(i) {
                assert!(v.is_finite(), "{}: non-finite feature at {i}", kpi.name);
            }
        }
    }
}
