//! Differential proof obligations for the batch-parallel extraction engine:
//!
//! - batched extraction is **bit-identical** to streaming extraction over
//!   all 133 registry configurations, for arbitrary batch boundaries and
//!   missing values;
//! - a detector cloned mid-stream continues bit-identically to the
//!   original, for every registry configuration (the snapshot/restore and
//!   cross-KPI transfer paths depend on this);
//! - the incremental order-statistics kernel ([`SortedWindow`]) agrees
//!   bit-for-bit with the batch `stats::` reference implementations the
//!   seed detectors computed from scratch each point.

use opprentice_repro::detectors::registry::registry;
use opprentice_repro::numeric::rolling::SortedWindow;
use opprentice_repro::numeric::stats;
use opprentice_repro::opprentice::features::OnlineExtractor;
use proptest::prelude::*;

const INTERVAL: u32 = 3600;

/// A KPI segment with seasonal shape, deterministic pseudo-noise, spikes
/// and missing points.
fn series_strategy() -> impl Strategy<Value = Vec<Option<f64>>> {
    (
        50.0f64..5000.0,         // base level
        0.0f64..0.9,             // seasonal amplitude
        0.0f64..0.3,             // noise scale
        0.0f64..0.25,            // missing ratio
        any::<u64>(),            // seed
        (24usize * 3)..(24 * 6), // length: 3..6 days hourly
    )
        .prop_map(|(base, amp, noise, missing, seed, len)| {
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            (0..len)
                .map(|i| {
                    if next() < missing {
                        return None;
                    }
                    let season = 1.0 + amp * ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin();
                    let spike = if next() < 0.02 { base } else { 0.0 };
                    Some((base * season + base * noise * (next() - 0.5) + spike).max(0.0))
                })
                .collect()
        })
}

fn bits(row: &[Option<f64>]) -> Vec<Option<u64>> {
    row.iter().map(|s| s.map(f64::to_bits)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// THE batching contract: feeding the series through
    /// [`OnlineExtractor::observe_batch`] in arbitrary chunks produces
    /// exactly the severity rows the per-point streaming path produces,
    /// bit for bit, over every one of the 133 configurations.
    #[test]
    fn batched_extraction_is_bit_identical_to_streaming(
        values in series_strategy(),
        chunk_seed in any::<u64>(),
    ) {
        let mut streaming = OnlineExtractor::new(INTERVAL);
        let mut batched = OnlineExtractor::new(INTERVAL);
        let m = streaming.n_features();
        prop_assert_eq!(m, 133);

        let mut expected: Vec<Vec<Option<u64>>> = Vec::with_capacity(values.len());
        for (i, v) in values.iter().enumerate() {
            expected.push(bits(streaming.observe(i as i64 * i64::from(INTERVAL), *v)));
        }

        // Random chunking, including size-1 (inline path) and large
        // chunks (worker-pool path).
        let mut state = chunk_seed | 1;
        let mut i = 0usize;
        while i < values.len() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let n = 1 + (state % 37) as usize;
            let end = (i + n).min(values.len());
            let timestamps: Vec<i64> =
                (i..end).map(|j| j as i64 * i64::from(INTERVAL)).collect();
            let rows = batched.observe_batch(&timestamps, &values[i..end]);
            for (k, j) in (i..end).enumerate() {
                prop_assert_eq!(
                    bits(&rows[k * m..(k + 1) * m]),
                    expected[j].clone(),
                    "row {} diverged (chunk {}..{})", j, i, end
                );
            }
            i = end;
        }
    }

    /// Cloning any configuration mid-stream yields a detector that scores
    /// the rest of the stream bit-identically — deep state copies, no
    /// aliasing (a cloned wavelet view gets its own filter bank).
    #[test]
    fn clone_mid_stream_continues_bit_identically(
        values in series_strategy(),
        cut_frac in 0.1f64..0.9,
    ) {
        let cut = ((values.len() as f64 * cut_frac) as usize).clamp(1, values.len() - 1);
        let mut reg = registry(INTERVAL);
        for (i, v) in values[..cut].iter().enumerate() {
            for cfg in reg.iter_mut() {
                let _ = cfg.observe_clamped(i as i64 * i64::from(INTERVAL), *v);
            }
        }
        let mut clones: Vec<_> = reg.iter().map(Clone::clone).collect();
        for (k, v) in values[cut..].iter().enumerate() {
            let ts = (cut + k) as i64 * i64::from(INTERVAL);
            for (cfg, dup) in reg.iter_mut().zip(clones.iter_mut()) {
                prop_assert_eq!(
                    cfg.observe_clamped(ts, *v).map(f64::to_bits),
                    dup.observe_clamped(ts, *v).map(f64::to_bits),
                    "{} diverged after clone at point {}", cfg.label(), cut + k
                );
            }
        }
    }

    /// The incremental sliding-window kernel vs the seed's from-scratch
    /// reference: after every push, all five order statistics agree bit
    /// for bit with `stats::` over the same (arrival-ordered) window.
    #[test]
    fn sorted_window_matches_from_scratch_reference(
        cap in 1usize..48,
        values in prop::collection::vec((0u8..4, -1e6f64..1e6), 1..300).prop_map(|raw| {
            raw.into_iter()
                .map(|(tag, x)| match tag {
                    0 => x,
                    1 => 0.0,
                    2 => -0.0,
                    _ => x * 1e-9, // near-duplicates stress cancellation
                })
                .collect::<Vec<f64>>()
        }),
    ) {
        let mut win = SortedWindow::new(cap);
        let mut reference: std::collections::VecDeque<f64> = Default::default();
        for &v in &values {
            win.push(v);
            reference.push_back(v);
            if reference.len() > cap {
                reference.pop_front();
            }
            let arrival: Vec<f64> = reference.iter().copied().collect();
            prop_assert_eq!(win.mean().map(f64::to_bits),
                stats::mean(&arrival).map(f64::to_bits));
            prop_assert_eq!(win.std_dev().map(f64::to_bits),
                stats::std_dev(&arrival).map(f64::to_bits));
            // The sign of a zero median is unspecified when the window
            // mixes ±0.0 (they compare equal); canonicalize it. Every
            // downstream use subtracts and takes abs, so severities are
            // bit-identical regardless.
            let canon = |x: f64| if x == 0.0 { 0.0f64.to_bits() } else { x.to_bits() };
            prop_assert_eq!(win.median().map(canon),
                stats::median(&arrival).map(canon));
            prop_assert_eq!(win.mad().map(f64::to_bits),
                stats::mad(&arrival).map(f64::to_bits));
            let max_abs = arrival.iter().fold(0.0f64, |a, x| a.max(x.abs()));
            prop_assert_eq!(win.max_abs().to_bits(), max_abs.to_bits());
        }
    }
}

/// A pruned configuration set (e.g. after feature selection) extracts the
/// same severities the full registry assigns to those columns.
#[test]
fn pruned_config_set_matches_full_registry_columns() {
    let full_reg = registry(INTERVAL);
    let kept: Vec<usize> = full_reg
        .iter()
        .filter(|c| c.group % 2 == 0)
        .map(|c| c.index)
        .collect();
    let pruned_reg: Vec<_> = registry(INTERVAL)
        .into_iter()
        .filter(|c| c.group % 2 == 0)
        .collect();
    assert!(pruned_reg.len() < full_reg.len());

    let mut full = OnlineExtractor::with_configs(full_reg);
    let mut pruned = OnlineExtractor::with_configs(pruned_reg);
    assert_eq!(pruned.n_features(), kept.len());
    {
        let full_labels = full.labels();
        for (col, &orig) in kept.iter().enumerate() {
            assert_eq!(pruned.labels()[col], full_labels[orig]);
        }
    }

    for i in 0..(24 * 4) {
        let ts = i as i64 * i64::from(INTERVAL);
        let v = if i % 13 == 7 {
            None
        } else {
            Some(100.0 + 20.0 * ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin())
        };
        let full_row = full.observe(ts, v).to_vec();
        let pruned_row = pruned.observe(ts, v).to_vec();
        for (col, &orig) in kept.iter().enumerate() {
            assert_eq!(
                pruned_row[col].map(f64::to_bits),
                full_row[orig].map(f64::to_bits),
                "column {col} (registry index {orig}) diverged at point {i}"
            );
        }
    }
}
