//! Differential proof obligations for the config-fused extraction engine:
//!
//! - every fused family kernel is **bit-identical** to the per-config
//!   scalar detectors it replaces, over all 133 registry configurations,
//!   for arbitrary batch boundaries, missing-value runs and non-finite
//!   inputs (normalized to missing at the serving boundary);
//! - a kernel cloned mid-stream continues bit-identically to the original
//!   (snapshot/restore path);
//! - cost-model shard rebalancing mid-stream never changes a single
//!   output bit (placement is pure scheduling);
//! - the scalar fallback path (extension registry: Opaque specs) fuses
//!   correctly too.
//!
//! The oracle is always the raw scalar registry driven point-by-point
//! through `observe_clamped` — *not* the extraction engine, so the two
//! implementations stay independent.

use opprentice_repro::detectors::fused::plan;
use opprentice_repro::detectors::registry::registry;
use opprentice_repro::opprentice::features::OnlineExtractor;
use proptest::prelude::*;

const INTERVAL: u32 = 3600;

/// A KPI segment with seasonal shape, deterministic pseudo-noise, spikes,
/// *long missing runs* (the Holt–Winters self-heal path) and occasional
/// NaN values (treated as missing upstream; here fed as `None`).
fn series_strategy() -> impl Strategy<Value = Vec<Option<f64>>> {
    (
        50.0f64..5000.0,         // base level
        0.0f64..0.9,             // seasonal amplitude
        0.0f64..0.3,             // noise scale
        0.0f64..0.2,             // missing ratio
        0.0f64..0.04,            // missing-burst start probability
        any::<u64>(),            // seed
        (24usize * 3)..(24 * 6), // length: 3..6 days hourly
    )
        .prop_map(|(base, amp, noise, missing, burst, seed, len)| {
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            let mut burst_left = 0usize;
            (0..len)
                .map(|i| {
                    if burst_left > 0 {
                        burst_left -= 1;
                        return None;
                    }
                    if next() < burst {
                        burst_left = 3 + (next() * 20.0) as usize;
                        return None;
                    }
                    if next() < missing {
                        return None;
                    }
                    let season = 1.0 + amp * ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin();
                    let spike = if next() < 0.02 { base } else { 0.0 };
                    Some((base * season + base * noise * (next() - 0.5) + spike).max(0.0))
                })
                .collect()
        })
}

/// The scalar oracle: every registry configuration driven per point.
fn scalar_rows(values: &[Option<f64>]) -> Vec<Vec<Option<u64>>> {
    let mut reg = registry(INTERVAL);
    values
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let ts = i as i64 * i64::from(INTERVAL);
            reg.iter_mut()
                .map(|cfg| cfg.observe_clamped(ts, *v).map(f64::to_bits))
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// THE fusion contract: the fused engine, fed in random chunks with a
    /// cost-model rebalance forced mid-stream, reproduces the scalar
    /// registry's severities bit for bit over all 133 configurations.
    #[test]
    fn fused_extraction_is_bit_identical_to_scalar_registry(
        values in series_strategy(),
        chunk_seed in any::<u64>(),
    ) {
        let expected = scalar_rows(&values);
        let mut fused = OnlineExtractor::new(INTERVAL);
        let m = fused.n_features();
        prop_assert_eq!(m, 133);

        let mut state = chunk_seed | 1;
        let mut i = 0usize;
        let mut rebalanced = false;
        while i < values.len() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let n = 1 + (state % 37) as usize;
            let end = (i + n).min(values.len());
            if !rebalanced && i > values.len() / 2 {
                // Re-pack units onto different shards mid-stream; outputs
                // must not move by a bit.
                fused.rebalance_now();
                rebalanced = true;
            }
            let timestamps: Vec<i64> =
                (i..end).map(|j| j as i64 * i64::from(INTERVAL)).collect();
            let rows = fused.observe_batch(&timestamps, &values[i..end]);
            for (k, j) in (i..end).enumerate() {
                let got: Vec<Option<u64>> =
                    rows[k * m..(k + 1) * m].iter().map(|s| s.map(f64::to_bits)).collect();
                prop_assert_eq!(
                    got,
                    expected[j].clone(),
                    "row {} diverged (chunk {}..{})", j, i, end
                );
            }
            i = end;
        }
    }

    /// Each fused kernel cloned mid-stream continues bit-identically, and
    /// both tracks keep matching the scalar oracle.
    #[test]
    fn fused_kernels_clone_mid_stream_bit_identically(
        values in series_strategy(),
        cut_frac in 0.1f64..0.9,
    ) {
        let cut = ((values.len() as f64 * cut_frac) as usize).clamp(1, values.len() - 1);
        let expected = scalar_rows(&values);
        for mut unit in plan(registry(INTERVAL)) {
            let k = unit.kernel.n_configs();
            let mut row = vec![None; k];
            for (i, v) in values[..cut].iter().enumerate() {
                unit.kernel.observe(i as i64 * i64::from(INTERVAL), *v, &mut row);
            }
            let mut dup = unit.kernel.clone_box();
            let mut dup_row = vec![None; k];
            for (off, v) in values[cut..].iter().enumerate() {
                let i = cut + off;
                let ts = i as i64 * i64::from(INTERVAL);
                unit.kernel.observe(ts, *v, &mut row);
                dup.observe(ts, *v, &mut dup_row);
                for (j, &col) in unit.columns.iter().enumerate() {
                    prop_assert_eq!(
                        row[j].map(f64::to_bits), expected[i][col],
                        "{} column {} diverged at point {}", unit.kernel.family(), col, i
                    );
                    prop_assert_eq!(
                        dup_row[j].map(f64::to_bits), expected[i][col],
                        "clone of {} column {} diverged at point {}",
                        unit.kernel.family(), col, i
                    );
                }
            }
        }
    }
}

/// The extension registry (143 configs: Table 3 plus CUSUM, sliding
/// percentile, seasonal ESD — all `Opaque` specs) runs through the fused
/// engine's scalar fallback and matches the per-config oracle.
#[test]
fn extension_registry_matches_scalar_oracle() {
    use opprentice_repro::detectors::extensions::extended_registry;

    let mut oracle = extended_registry(INTERVAL);
    let mut fused = OnlineExtractor::with_configs(extended_registry(INTERVAL));
    let m = fused.n_features();
    assert_eq!(m, oracle.len());

    let values: Vec<Option<f64>> = (0..24 * 5)
        .map(|i| {
            if i % 29 == 13 {
                None
            } else {
                Some(100.0 + 15.0 * ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin())
            }
        })
        .collect();
    let timestamps: Vec<i64> = (0..values.len())
        .map(|i| i as i64 * i64::from(INTERVAL))
        .collect();

    // One big batch through the pool, checked row by row.
    let rows = fused.observe_batch(&timestamps, &values).to_vec();
    for (i, v) in values.iter().enumerate() {
        for (c, cfg) in oracle.iter_mut().enumerate() {
            assert_eq!(
                rows[i * m + c].map(f64::to_bits),
                cfg.observe_clamped(timestamps[i], *v).map(f64::to_bits),
                "{} diverged at point {i}",
                cfg.label()
            );
        }
    }
}

/// NaN and infinite inputs are normalized to *missing* at the serving
/// boundary (`proto::parse_value` rejects/maps non-finite values) — the
/// detector contract forbids raw NaN inside the kernels (`SortedWindow`
/// asserts on it in debug builds). This test applies the same boundary
/// normalization and checks the fused engine stays lockstep with the
/// scalar oracle through the resulting dense missing pattern.
#[test]
fn non_finite_inputs_normalize_to_missing_and_stay_lockstep() {
    let values: Vec<Option<f64>> = (0..24 * 4)
        .map(|i| match i % 17 {
            5 => Some(f64::NAN),
            9 => Some(f64::INFINITY),
            11 => None,
            _ => Some(100.0 + (i % 24) as f64),
        })
        // The serving boundary: non-finite values never reach a detector.
        .map(|v| v.filter(|x| x.is_finite()))
        .collect();
    let expected = scalar_rows(&values);
    let mut fused = OnlineExtractor::new(INTERVAL);
    let m = fused.n_features();
    for (i, v) in values.iter().enumerate() {
        let ts = i as i64 * i64::from(INTERVAL);
        let row = fused.observe(ts, *v);
        for c in 0..m {
            assert_eq!(
                row[c].map(f64::to_bits),
                expected[i][c],
                "feature {c} diverged at point {i}"
            );
        }
    }
}
