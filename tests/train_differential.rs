//! Differential proof that parallel training is bit-identical to
//! sequential training.
//!
//! The serving layer retrains forests on background threads and
//! `RandomForest::fit` builds trees on a thread pool, so the whole
//! crash-recovery and hot-swap story leans on one property: **the trained
//! forest is a pure function of (params, data)** — thread count, thread
//! scheduling, and which thread built which tree must leave no trace.
//! Every tree draws its randomness from an RNG stream derived only from
//! the master seed and the tree's index, so this should hold by
//! construction; this suite proves it structurally rather than trusting
//! the construction:
//!
//! - the serialized forest bytes (`to_bytes`) are equal — every node,
//!   threshold, and leaf probability of every tree,
//! - predictions are bit-for-bit equal (`f64::to_bits`) on probe data,
//! - the compiled inference arenas are equal (`CompiledForest: PartialEq`),
//! - a parallel-trained forest round-trips through persistence to the
//!   same bytes,
//!
//! across a grid of forest shapes (tree count, feature budget, binned and
//! exact split search, dataset size) and explicit thread counts — *not*
//! `available_parallelism`, so the grid exercises real multi-threading
//! even on single-core CI hosts.

use opprentice_learn::{Classifier, Dataset, RandomForest, RandomForestParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A noisy two-informative-feature dataset, the same shape the learn
/// crate's unit tests use.
fn noisy_dataset(n: usize, n_noise: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Dataset::new(2 + n_noise);
    for _ in 0..n {
        let f0: f64 = rng.gen_range(0.0..10.0);
        let f1: f64 = rng.gen_range(0.0..10.0);
        let mut row = vec![f0, f1];
        for _ in 0..n_noise {
            row.push(rng.gen_range(0.0..10.0));
        }
        d.push(&row, f0 + f1 > 10.0);
    }
    d
}

/// The forest-shape grid: (n_trees, max_features, n_bins, rows).
/// Covers few/many trees, restricted and default feature budgets, binned
/// and exact split search, and small through moderate datasets.
fn grid() -> Vec<(RandomForestParams, usize)> {
    [
        (4, Some(4), Some(32), 120),
        (16, None, Some(64), 300),
        (9, Some(1), None, 80),
        (12, None, None, 600),
    ]
    .into_iter()
    .enumerate()
    .map(|(i, (n_trees, max_features, n_bins, rows))| {
        (
            RandomForestParams {
                n_trees,
                max_features,
                n_bins,
                seed: 1000 + i as u64,
                ..Default::default()
            },
            rows,
        )
    })
    .collect()
}

const THREAD_COUNTS: [usize; 4] = [2, 3, 8, 64];

fn fit(params: &RandomForestParams, data: &Dataset, threads: usize) -> RandomForest {
    let mut f = RandomForest::new(params.clone());
    f.fit_with_threads(data, threads);
    f
}

/// Asserts `a` and `b` are the same forest: same serialized bytes, same
/// compiled arena, bit-identical predictions on `probes`.
fn assert_same_forest(a: &RandomForest, b: &RandomForest, probes: &Dataset, what: &str) {
    assert_eq!(a.to_bytes(), b.to_bytes(), "{what}: serialized bytes");
    assert_eq!(a.compile(), b.compile(), "{what}: compiled arena");
    for i in 0..probes.len() {
        assert_eq!(
            a.predict_proba(probes.row(i)).to_bits(),
            b.predict_proba(probes.row(i)).to_bits(),
            "{what}: prediction bits on probe row {i}"
        );
    }
}

/// The core differential: for every grid point, every thread count yields
/// byte-for-byte the forest the sequential build yields.
#[test]
fn parallel_training_is_bit_identical_to_sequential() {
    for (params, rows) in grid() {
        let train = noisy_dataset(rows, 3, params.seed);
        let probes = noisy_dataset(128, 3, params.seed + 7);
        let sequential = fit(&params, &train, 1);
        assert_eq!(sequential.tree_count(), params.n_trees);
        for threads in THREAD_COUNTS {
            let parallel = fit(&params, &train, threads);
            assert_same_forest(
                &sequential,
                &parallel,
                &probes,
                &format!("{params:?} with {threads} threads"),
            );
        }
    }
}

/// The auto-parallel entry point (`Classifier::fit`, which picks a thread
/// count from the host) is the same pure function.
#[test]
fn auto_threaded_fit_matches_explicit_sequential() {
    for (params, rows) in grid() {
        let train = noisy_dataset(rows, 3, params.seed);
        let probes = noisy_dataset(64, 3, params.seed + 11);
        let sequential = fit(&params, &train, 1);
        let mut auto = RandomForest::new(params.clone());
        auto.fit(&train);
        assert_same_forest(&sequential, &auto, &probes, &format!("{params:?} auto"));
    }
}

/// A parallel-trained forest survives a persistence round-trip with its
/// bytes — and therefore its predictions — unchanged.
#[test]
fn parallel_trained_forest_round_trips_through_persistence() {
    let (params, rows) = grid().remove(1);
    let train = noisy_dataset(rows, 3, params.seed);
    let probes = noisy_dataset(64, 3, params.seed + 13);
    let trained = fit(&params, &train, 8);
    let bytes = trained.to_bytes();
    let restored = RandomForest::from_bytes(&bytes).expect("round-trip");
    assert_same_forest(&trained, &restored, &probes, "persistence round-trip");
    assert_eq!(restored.to_bytes(), bytes);
}

/// Oversubscription far beyond the tree count (and the host's cores) is
/// harmless: the chunking clamps to one tree per thread at most.
#[test]
fn more_threads_than_trees_is_equivalent() {
    let params = RandomForestParams {
        n_trees: 3,
        seed: 99,
        ..Default::default()
    };
    let train = noisy_dataset(150, 2, 5);
    let probes = noisy_dataset(64, 2, 6);
    let sequential = fit(&params, &train, 1);
    let oversubscribed = fit(&params, &train, 256);
    assert_same_forest(
        &sequential,
        &oversubscribed,
        &probes,
        "256 threads, 3 trees",
    );
}
