//! Property-based integration tests: invariants every detector
//! configuration must uphold on arbitrary-ish KPI inputs.

use opprentice_repro::detectors::registry::registry;
use proptest::prelude::*;

/// Builds a short hourly series from proptest-chosen parameters.
fn series_strategy() -> impl Strategy<Value = Vec<Option<f64>>> {
    (
        50.0f64..5000.0,         // base level
        0.0f64..0.9,             // seasonal amplitude
        0.0f64..0.3,             // noise scale (deterministic pseudo-noise)
        0.0f64..0.2,             // missing ratio
        any::<u64>(),            // seed
        (24usize * 4)..(24 * 8), // length: 4..8 days hourly
    )
        .prop_map(|(base, amp, noise, missing, seed, len)| {
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            (0..len)
                .map(|i| {
                    if next() < missing {
                        return None;
                    }
                    let season = 1.0 + amp * ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin();
                    Some((base * season + base * noise * (next() - 0.5)).max(0.0))
                })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every configuration: severities are finite and non-negative, and
    /// missing inputs never produce a verdict.
    #[test]
    fn all_133_configs_emit_sane_severities(values in series_strategy()) {
        let mut reg = registry(3600);
        for (i, v) in values.iter().enumerate() {
            let ts = i as i64 * 3600;
            for cfg in reg.iter_mut() {
                let s = cfg.detector.observe(ts, *v);
                if v.is_none() {
                    prop_assert_eq!(s, None, "{} gave a verdict on a missing point", cfg.detector.name());
                }
                if let Some(s) = s {
                    prop_assert!(s.is_finite() && s >= 0.0,
                        "{} ({}): severity {s}", cfg.detector.name(), cfg.detector.config());
                }
            }
        }
    }

    /// Determinism: replaying the same input gives identical severities.
    #[test]
    fn detectors_are_deterministic(values in series_strategy()) {
        let run = || -> Vec<Vec<Option<f64>>> {
            let mut reg = registry(3600);
            values
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    reg.iter_mut().map(|c| c.detector.observe(i as i64 * 3600, *v)).collect()
                })
                .collect()
        };
        prop_assert_eq!(run(), run());
    }
}

/// Causality check (not property-based — uses a targeted construction):
/// changing a *future* point must not change any past severity.
#[test]
fn detectors_are_causal() {
    let build = |tail: f64| -> Vec<Vec<Option<f64>>> {
        let mut reg = registry(3600);
        let mut out = Vec::new();
        for i in 0..200i64 {
            let v = if i == 199 {
                tail
            } else {
                100.0 + (i % 24) as f64
            };
            out.push(
                reg.iter_mut()
                    .map(|c| c.detector.observe(i * 3600, Some(v)))
                    .collect(),
            );
        }
        out
    };
    let a = build(0.0);
    let b = build(1e6);
    // All but the final row must be identical.
    assert_eq!(a[..199], b[..199], "a detector peeked at the future");
    // And the final row must differ somewhere (the tail is wildly different).
    assert_ne!(a[199], b[199]);
}

/// Warm-up discipline: no configuration may emit a severity for the very
/// first point except the memoryless simple threshold.
#[test]
fn only_simple_threshold_scores_the_first_point() {
    let mut reg = registry(3600);
    for cfg in reg.iter_mut() {
        let s = cfg.detector.observe(0, Some(123.0));
        if cfg.detector.name() == "simple threshold" {
            assert_eq!(s, Some(123.0));
        } else {
            assert_eq!(s, None, "{} scored the first point", cfg.detector.name());
        }
    }
}
