//! Chaos tests: the serving layer under hostile clients and crashes.
//!
//! Everything here drives a real `Server` over real TCP sockets using the
//! fault-injection utilities in `opprentice_server::testing`. The tests
//! check the tentpole robustness guarantees end to end:
//!
//! - a slowloris client cannot block other clients,
//! - mid-command disconnects and garbage floods are harmless,
//! - a connection storm is shed with `ERR busy`, not by degrading everyone,
//! - a killed-and-resumed durable session produces verdicts identical to a
//!   session that was never interrupted — across client crashes, a handler
//!   panic, *and* a full server restart,
//! - a session killed while a background retrain is in flight resumes on
//!   exactly the old model; killed after the swap, on exactly the new one —
//!   never a torn in-between,
//! - a panicking handler takes down only its own connection,
//! - `OBSB` batches reply and are write-ahead logged exactly like the
//!   equivalent `OBS` sequence, including across a kill-and-resume cycle.

use opprentice_server::testing::{Client, FaultInjector};
use opprentice_server::{Server, ServerConfig, ServerHandle};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn test_config() -> ServerConfig {
    ServerConfig {
        n_trees: 8,
        ..Default::default()
    } // small forest: fast retrains
}

fn start_server(config: ServerConfig) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind_with("127.0.0.1:0", config).expect("bind");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.serve().expect("serve"));
    (handle, join)
}

/// A unique scratch directory per test (no external tempdir crate).
fn scratch() -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nonce = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("opprentice-chaos-{}-{nonce}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The shared workload: a daily-patterned KPI with labeled spikes.
/// Returns (OBS lines, label flags).
fn kpi_stream(hours: usize) -> (Vec<String>, String) {
    let mut obs = Vec::with_capacity(hours);
    let mut flags = String::with_capacity(hours);
    for i in 0..hours {
        let base = 100.0 + 20.0 * ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin();
        let anomalous = i % 63 == 50 || i % 63 == 51;
        let v = if anomalous { base + 150.0 } else { base };
        obs.push(format!("OBS {} {v}", i * 3600));
        flags.push(if anomalous { '1' } else { '0' });
    }
    (obs, flags)
}

fn send_all(c: &mut Client, lines: &[String]) -> Vec<String> {
    lines.iter().map(|l| c.send(l).expect("send")).collect()
}

/// Issues `RETRAIN` (which returns immediately) and polls `STATUS` until
/// the background job's model has been swapped in.
fn retrain_and_wait(c: &mut Client) {
    let reply = c.send("RETRAIN").expect("retrain");
    assert!(reply.starts_with("OK retraining job="), "{reply}");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = c.send("STATUS").expect("status");
        if status.contains("training=0") {
            assert!(status.contains(" trained=1 "), "{status}");
            return;
        }
        assert!(Instant::now() < deadline, "retrain never landed: {status}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// One field from a fresh `STATUS` reply.
fn status_field(c: &mut Client, key: &str) -> String {
    let status = c.send("STATUS").expect("status");
    status
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix(key))
        .unwrap_or_else(|| panic!("no {key} in {status}"))
        .to_string()
}

/// Reconnects and `RESUME`s a durable session. An abruptly killed
/// connection holds its session lease until the server finishes unwinding
/// it, so "session busy" is retried briefly.
fn resume(addr: std::net::SocketAddr, id: &str) -> Client {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut c = Client::connect(addr).expect("connect");
        let reply = c.send(&format!("RESUME {id}")).expect("resume");
        if reply.starts_with("OK resumed") {
            return c;
        }
        if !reply.contains("busy") || Instant::now() >= deadline {
            panic!("RESUME {id} failed: {reply}");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn slowloris_does_not_block_other_clients() {
    let config = ServerConfig {
        line_deadline: Duration::from_millis(400),
        read_tick: Duration::from_millis(20),
        ..test_config()
    };
    let (handle, join) = start_server(config);
    let addr = handle.addr();

    // The attacker trickles one byte every 50 ms and never finishes a line.
    let attacker = std::thread::spawn(move || {
        FaultInjector::new(addr)
            .slowloris(
                &"OBS 0 1.0 and then some padding".repeat(8),
                Duration::from_millis(50),
            )
            .expect("slowloris io")
    });

    // Meanwhile a well-behaved client must see normal latency throughout.
    let mut c = Client::connect(addr).expect("connect");
    assert!(c.send("HELLO 3600").unwrap().starts_with("OK"));
    let started = Instant::now();
    for i in 0..50 {
        let reply = c.send(&format!("OBS {} 100.0", i * 3600)).unwrap();
        assert!(reply.starts_with("OK"), "{reply}");
    }
    // 50 round-trips while the attack runs: seconds would mean the
    // attacker pinned the server; this must be near-instant.
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "well-behaved client starved: {:?}",
        started.elapsed()
    );
    c.send("QUIT").unwrap();

    // The attacker was cut off with an explicit timeout error.
    assert_eq!(attacker.join().unwrap(), "ERR line timeout");
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn disconnects_and_garbage_are_harmless() {
    let (handle, join) = start_server(test_config());
    let inject = FaultInjector::new(handle.addr());

    // Clients vanishing mid-command, repeatedly.
    for partial in ["OBS 12 4", "HELLO", "LAB", "RETR"] {
        inject
            .disconnect_mid_command(partial)
            .expect("mid-command disconnect");
    }
    // A flood of binary junk: every line answered with ERR, nothing else.
    let errs = inject.garbage_flood(200, 0xBAD5EED).expect("flood");
    assert_eq!(errs, 200, "some garbage line crashed or wedged the server");

    // The server is entirely unimpressed.
    let mut c = Client::connect(handle.addr()).expect("connect");
    assert!(c.send("HELLO 60").unwrap().starts_with("OK"));
    assert!(c.send("OBS 0 1.0").unwrap().starts_with("OK"));
    c.send("QUIT").unwrap();
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn client_storm_is_shed_with_err_busy() {
    let config = ServerConfig {
        max_connections: 4,
        ..test_config()
    };
    let (handle, join) = start_server(config);
    let addr = handle.addr();

    // 16 clients connect at once and hold their connections open.
    let clients: Vec<_> = (0..16)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                let reply = c.send("HELLO 60").expect("hello");
                if reply.starts_with("OK") {
                    // Hold the slot briefly so the storm actually overlaps.
                    std::thread::sleep(Duration::from_millis(300));
                    c.send("QUIT").expect("quit");
                    true
                } else {
                    assert_eq!(reply, "ERR busy", "unexpected shed response");
                    false
                }
            })
        })
        .collect();
    let served = clients
        .into_iter()
        .map(|t| t.join().unwrap())
        .filter(|&ok| ok)
        .count();

    // Load shedding means *some* were turned away — but never silently,
    // and the ones admitted were served correctly.
    assert!(served >= 1, "nobody was served during the storm");
    assert!(
        served < 16,
        "the cap admitted everyone; shedding never engaged"
    );

    // After the storm: business as usual.
    let mut c = Client::connect(addr).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let reply = c.send("HELLO 60").expect("hello");
        if reply.starts_with("OK") {
            break;
        }
        assert!(Instant::now() < deadline, "server never recovered: {reply}");
        std::thread::sleep(Duration::from_millis(20));
        c = Client::connect(addr).expect("reconnect");
    }
    c.send("QUIT").unwrap();
    handle.shutdown();
    join.join().unwrap();
}

/// The tentpole guarantee: a durable session that is killed (client crash,
/// handler panic, even a full server restart) and then `RESUME`d produces
/// verdicts *identical* to a session that was never interrupted.
#[test]
fn killed_and_resumed_session_scores_identically() {
    let state_dir = scratch();
    let config = ServerConfig {
        state_dir: Some(state_dir.clone()),
        snapshot_every: 64,
        enable_panic_verb: true,
        ..test_config()
    };
    let (handle, join) = start_server(config.clone());

    // Three weeks of history, labels, one retrain, then a held-out week.
    let (history, flags) = kpi_stream(21 * 24);
    let (full, _) = kpi_stream(22 * 24);
    let mut held_out: Vec<String> = full[21 * 24..].to_vec();
    // The spike schedule misses this window, so probe explicitly: one
    // obvious anomaly and one normal point close the held-out stream.
    held_out.push(format!("OBS {} 400.0", 22 * 24 * 3600));
    held_out.push(format!("OBS {} 100.0", (22 * 24 + 1) * 3600));
    let held_out = &held_out[..];

    // Control: one uninterrupted (ephemeral) session sees everything.
    let mut control = Client::connect(handle.addr()).expect("connect");
    assert!(control.send("HELLO 3600").unwrap().starts_with("OK"));
    send_all(&mut control, &history);
    assert!(control
        .send(&format!("LABEL {flags}"))
        .unwrap()
        .starts_with("OK"));
    retrain_and_wait(&mut control);
    let control_verdicts = send_all(&mut control, held_out);
    control.send("QUIT").unwrap();

    // Victim: a durable session repeatedly interrupted at awkward points.
    let mut victim = Client::connect(handle.addr()).expect("connect");
    assert!(victim.send("HELLO 3600 victim").unwrap().starts_with("OK"));
    send_all(&mut victim, &history[..200]);
    victim.kill(); // client crash mid-history, no QUIT

    let mut victim = resume(handle.addr(), "victim");
    send_all(&mut victim, &history[200..]);
    assert!(victim
        .send(&format!("LABEL {flags}"))
        .unwrap()
        .starts_with("OK"));
    retrain_and_wait(&mut victim);
    // A handler panic poisons the session: no final snapshot is taken, so
    // the next resume must recover from the WAL alone past the last
    // periodic snapshot.
    assert_eq!(victim.send("PANIC").unwrap(), "ERR internal error");
    assert_eq!(victim.read_line().unwrap(), ""); // and the connection died

    let mut victim = resume(handle.addr(), "victim");
    let first_half = send_all(&mut victim, &held_out[..12]);
    victim.kill();

    // Full server restart on the same state directory.
    handle.shutdown();
    join.join().unwrap();
    let (handle, join) = start_server(config);

    let mut victim = resume(handle.addr(), "victim");
    let second_half = send_all(&mut victim, &held_out[12..]);
    victim.send("QUIT").unwrap();

    // Probability, cThld and verdict — byte-identical for every point.
    let victim_verdicts: Vec<String> = first_half.into_iter().chain(second_half).collect();
    assert_eq!(victim_verdicts, control_verdicts);
    // Sanity: the comparison is about real detections, not all "pending".
    assert!(
        victim_verdicts.iter().any(|v| v.contains("anomaly=1")),
        "no spike ever alerted"
    );

    handle.shutdown();
    join.join().unwrap();
    std::fs::remove_dir_all(state_dir).unwrap();
}

/// The crash guarantee for background retraining: killing a session while
/// a retrain job is in flight abandons the job — the `RETRAIN` only
/// reaches the WAL when its model is swapped in, so the resumed session
/// serves exactly the old model. Killing it after the swap resumes on
/// exactly the new one. Both halves are checked against uninterrupted
/// control sessions for byte-identical verdicts.
#[test]
fn kill_mid_retrain_resumes_on_exactly_old_or_new_model() {
    let state_dir = scratch();
    let config = ServerConfig {
        state_dir: Some(state_dir.clone()),
        ..test_config()
    };
    let (handle, join) = start_server(config);
    let addr = handle.addr();

    // Four weeks of labeled data; the last week's labels feed a second
    // retrain. Probes A land between the interrupted and the successful
    // retrain, probes B after the successful one.
    let (full, all_flags) = kpi_stream(28 * 24);
    let history = full[..21 * 24].to_vec();
    let week4 = full[21 * 24..].to_vec();
    let flags21 = &all_flags[..21 * 24];
    let flags_w4 = &all_flags[21 * 24..];
    let probes_a = vec![
        format!("OBS {} 400.0", 28 * 24 * 3600),
        format!("OBS {} 100.0", (28 * 24 + 1) * 3600),
    ];
    let probes_b = vec![
        format!("OBS {} 400.0", (28 * 24 + 2) * 3600),
        format!("OBS {} 100.0", (28 * 24 + 3) * 3600),
    ];

    // Controls: uninterrupted ephemeral sessions fed the identical stream.
    // control1 stops at one retrain (what the victim resumes to in case A);
    // control2 also runs the second retrain at exactly the position where
    // the victim's succeeds (case B).
    let run_control = |second_retrain: bool| -> (Vec<String>, Vec<String>) {
        let mut c = Client::connect(addr).expect("connect");
        assert!(c.send("HELLO 3600").unwrap().starts_with("OK"));
        send_all(&mut c, &history);
        assert!(c
            .send(&format!("LABEL {flags21}"))
            .unwrap()
            .starts_with("OK"));
        retrain_and_wait(&mut c);
        send_all(&mut c, &week4);
        assert!(c
            .send(&format!("LABEL {flags_w4}"))
            .unwrap()
            .starts_with("OK"));
        let a = send_all(&mut c, &probes_a);
        if second_retrain {
            retrain_and_wait(&mut c);
        }
        let b = send_all(&mut c, &probes_b);
        c.send("QUIT").unwrap();
        (a, b)
    };
    let (control1_a, _) = run_control(false);
    let (control2_a, control2_b) = run_control(true);
    assert_eq!(
        control1_a, control2_a,
        "probes A precede the second retrain"
    );

    // Victim: train once, label week 4, then submit a retrain and die
    // before anything polls the job in.
    let mut victim = Client::connect(addr).expect("connect");
    assert!(victim
        .send("HELLO 3600 midtrain")
        .unwrap()
        .starts_with("OK"));
    send_all(&mut victim, &history);
    assert!(victim
        .send(&format!("LABEL {flags21}"))
        .unwrap()
        .starts_with("OK"));
    retrain_and_wait(&mut victim);
    send_all(&mut victim, &week4);
    assert!(victim
        .send(&format!("LABEL {flags_w4}"))
        .unwrap()
        .starts_with("OK"));
    let reply = victim.send("RETRAIN").unwrap();
    assert!(reply.starts_with("OK retraining job="), "{reply}");
    victim.kill(); // crash with the job in flight — the swap never lands

    // Case A: the resumed session is on exactly the old model.
    let mut victim = resume(addr, "midtrain");
    assert_eq!(status_field(&mut victim, "model_version="), "1");
    assert_eq!(status_field(&mut victim, "training="), "0");
    assert_eq!(send_all(&mut victim, &probes_a), control1_a);

    // Case B: retrain to completion (the swap reaches the WAL), then die.
    retrain_and_wait(&mut victim);
    assert_eq!(status_field(&mut victim, "model_version="), "2");
    victim.kill();

    let mut victim = resume(addr, "midtrain");
    assert_eq!(status_field(&mut victim, "model_version="), "2");
    let victim_b = send_all(&mut victim, &probes_b);
    assert_eq!(victim_b, control2_b);
    assert!(
        victim_b.iter().any(|v| v.contains("anomaly=1")),
        "no spike ever alerted"
    );
    victim.send("QUIT").unwrap();

    handle.shutdown();
    join.join().unwrap();
    std::fs::remove_dir_all(state_dir).unwrap();
}

/// The batching contract under crashes: a durable session fed `OBSB`
/// batches (1) answers the exact `|`-join of the replies the equivalent
/// `OBS` sequence produces, (2) logs the decomposed `OBS` lines to its WAL
/// byte-for-byte, and (3) keeps producing byte-identical verdicts after a
/// kill-and-resume cycle.
#[test]
fn obsb_batches_match_obs_across_kill_and_resume() {
    let state_dir = scratch();
    let config = ServerConfig {
        state_dir: Some(state_dir.clone()),
        snapshot_every: 64,
        ..test_config()
    };
    let (handle, join) = start_server(config);

    // Three weeks of history plus a held-out week; the spike schedule
    // misses the held-out window, so explicit probes close the stream.
    let (history, flags) = kpi_stream(21 * 24);
    let (full, _) = kpi_stream(22 * 24);
    let mut held_out: Vec<String> = full[21 * 24..].to_vec();
    held_out.push(format!("OBS {} 400.0", 22 * 24 * 3600));
    held_out.push(format!("OBS {} 100.0", (22 * 24 + 1) * 3600));

    // Rewrites a run of `OBS <ts> <v>` lines as one-day `OBSB` lines.
    let to_batches = |lines: &[String]| -> Vec<String> {
        lines
            .chunks(24)
            .map(|chunk| {
                let ts0 = chunk[0].split_whitespace().nth(1).unwrap();
                let values: Vec<&str> = chunk
                    .iter()
                    .map(|l| l.split_whitespace().nth(2).unwrap())
                    .collect();
                format!("OBSB {ts0} {}", values.join(" "))
            })
            .collect()
    };
    // Splits batch replies back into the per-point replies they carry.
    let flatten = |replies: &[String]| -> Vec<String> {
        replies
            .iter()
            .flat_map(|r| {
                r.strip_prefix("OK ")
                    .expect("OK batch reply")
                    .split('|')
                    .map(|p| format!("OK {p}"))
                    .collect::<Vec<_>>()
            })
            .collect()
    };

    // Control: an uninterrupted ephemeral session fed point by point.
    let mut control = Client::connect(handle.addr()).expect("connect");
    assert!(control.send("HELLO 3600").unwrap().starts_with("OK"));
    let control_history = send_all(&mut control, &history);
    assert!(control
        .send(&format!("LABEL {flags}"))
        .unwrap()
        .starts_with("OK"));
    retrain_and_wait(&mut control);
    let control_verdicts = send_all(&mut control, &held_out);
    control.send("QUIT").unwrap();

    // Victim: a durable session fed in batches, killed mid-history.
    let mut victim = Client::connect(handle.addr()).expect("connect");
    assert!(victim.send("HELLO 3600 obsb").unwrap().starts_with("OK"));
    let week1 = send_all(&mut victim, &to_batches(&history[..7 * 24]));
    victim.kill(); // client crash between batches, no QUIT

    let mut victim = resume(handle.addr(), "obsb");
    let rest = send_all(&mut victim, &to_batches(&history[7 * 24..]));
    let batched_history: Vec<String> = week1.into_iter().chain(rest).collect();
    assert_eq!(flatten(&batched_history), control_history);

    assert!(victim
        .send(&format!("LABEL {flags}"))
        .unwrap()
        .starts_with("OK"));
    retrain_and_wait(&mut victim);

    // Held out: first half batched, then another kill, rest as singles.
    let batched_half = send_all(&mut victim, &to_batches(&held_out[..12]));
    victim.kill();
    let mut victim = resume(handle.addr(), "obsb");
    let single_half = send_all(&mut victim, &held_out[12..]);
    let victim_verdicts: Vec<String> = flatten(&batched_half)
        .into_iter()
        .chain(single_half)
        .collect();
    assert_eq!(victim_verdicts, control_verdicts);
    assert!(
        victim_verdicts.iter().any(|v| v.contains("anomaly=1")),
        "no spike ever alerted"
    );
    victim.send("QUIT").unwrap();
    handle.shutdown();
    join.join().unwrap();

    // The WAL holds the decomposed OBS lines, byte-identical to the
    // equivalent single-OBS stream, in order.
    let wal = std::fs::read_to_string(state_dir.join("obsb").join("wal.log")).unwrap();
    let logged_obs: Vec<&str> = wal.lines().filter(|l| l.starts_with("OBS ")).collect();
    let expected: Vec<&str> = history
        .iter()
        .chain(held_out.iter())
        .map(String::as_str)
        .collect();
    assert_eq!(logged_obs, expected);

    std::fs::remove_dir_all(state_dir).unwrap();
}

#[test]
fn panic_takes_down_one_connection_not_the_server() {
    let config = ServerConfig {
        enable_panic_verb: true,
        ..test_config()
    };
    let (handle, join) = start_server(config);

    let mut bystander = Client::connect(handle.addr()).expect("connect");
    assert!(bystander.send("HELLO 60").unwrap().starts_with("OK"));
    assert!(bystander.send("OBS 0 1.0").unwrap().starts_with("OK"));

    let mut crasher = Client::connect(handle.addr()).expect("connect");
    assert!(crasher.send("HELLO 60").unwrap().starts_with("OK"));
    assert_eq!(crasher.send("PANIC").unwrap(), "ERR internal error");
    assert_eq!(crasher.read_line().unwrap(), ""); // crasher is disconnected

    // The bystander's session kept its state; new clients are welcome.
    assert!(bystander
        .send("STATUS")
        .unwrap()
        .starts_with("OK observed=1 labeled=0 trained=0 cthld=0.500 extract_us="));
    let mut fresh = Client::connect(handle.addr()).expect("connect");
    assert!(fresh.send("HELLO 60").unwrap().starts_with("OK"));
    fresh.send("QUIT").unwrap();
    bystander.send("QUIT").unwrap();
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn hung_clients_do_not_block_graceful_shutdown() {
    let config = ServerConfig {
        read_tick: Duration::from_millis(20),
        ..test_config()
    };
    let (handle, join) = start_server(config);
    let inject = FaultInjector::new(handle.addr());

    // Several clients connect and go completely silent — one of them with
    // a half-written command in flight.
    let _stalled: Vec<_> = (0..3)
        .map(|_| inject.connect_and_stall().unwrap())
        .collect();
    let mut half = Client::connect(handle.addr()).expect("connect");
    half.write_raw(b"OBS 12 4").unwrap(); // no newline, never completed

    // Shutdown must drain them within the read tick, not wait for the
    // idle timeout (300 s by default) or for the clients to hang up.
    let started = Instant::now();
    handle.shutdown();
    join.join().unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "hung clients blocked shutdown for {:?}",
        started.elapsed()
    );
}
