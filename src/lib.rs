//! Umbrella crate for the Opprentice reproduction workspace.
//!
//! This crate exists to host the cross-crate integration tests under
//! `tests/` and the runnable examples under `examples/`. It re-exports the
//! member crates so examples and tests can use one import root.

pub use opprentice;
pub use opprentice_datagen as datagen;
pub use opprentice_detectors as detectors;
pub use opprentice_learn as learn;
pub use opprentice_numeric as numeric;
pub use opprentice_timeseries as timeseries;
